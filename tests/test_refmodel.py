"""ISA reference model: kernel equivalence and architectural semantics.

The strongest correctness statement in this suite: for every workload
kernel, the single-step reference model, the flip-flop-level pipeline
and the kernel's bit-exact Python reference all produce the identical
ordered OUT stream.  Two independently-written executable models of the
ISA agreeing with a third non-ISA description leaves very little room
for a shared misunderstanding of the architecture.
"""

from __future__ import annotations

import pytest

from repro.cpu import InputStream, Memory, assemble
from repro.cpu.isa import Op
from repro.verify import RefModel, cause_name, cosim, generate_program
from repro.workloads import DEFAULT_SEED, KERNELS, run_kernel
from tests.conftest import PROLOGUE, SUM_LOOP, make_cpu


def make_ref(source: str, stimulus: list[int] | None = None,
             mem_words: int = 2048) -> RefModel:
    program = assemble(source)
    mem = Memory.from_program(program, size_words=mem_words)
    return RefModel(mem, InputStream(stimulus or [0]), entry=program.entry)


def pipeline_outputs(source: str, stimulus: list[int] | None = None,
                     max_cycles: int = 20_000) -> list[int]:
    """Strobe-sampled OUT stream of the flip-flop-level pipeline."""
    cpu = make_cpu(source, stimulus)
    outputs: list[int] = []
    prev = cpu.io_out_v
    for _ in range(max_cycles):
        if cpu.halted:
            break
        cpu.step()
        if cpu.io_out_v != prev:
            outputs.append(cpu.io_out)
            prev = cpu.io_out_v
    return outputs


# ---------------------------------------------------------------------------
# Kernel equivalence: refmodel == Python reference == pipeline, all kernels.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", sorted(KERNELS))
def test_refmodel_matches_kernel_reference(name):
    workload = KERNELS[name]
    stimulus = workload.stimulus(DEFAULT_SEED)
    ref = make_ref(workload.source, stimulus, mem_words=4096)
    ref.run(max_steps=400_000)
    assert ref.halted, f"{name}: reference model did not halt"
    assert not (ref.status & 1), f"{name}: unexpected exception"
    assert ref.outputs == workload.reference(stimulus)


@pytest.mark.parametrize("name", sorted(KERNELS))
def test_refmodel_matches_pipeline_outputs(name):
    workload = KERNELS[name]
    stimulus = workload.stimulus(DEFAULT_SEED)
    ref = make_ref(workload.source, stimulus, mem_words=4096)
    ref.run(max_steps=400_000)
    run = run_kernel(workload, seed=DEFAULT_SEED)
    assert run.halted and ref.halted
    assert ref.outputs == run.outputs


# ---------------------------------------------------------------------------
# Targeted architectural semantics.
# ---------------------------------------------------------------------------

def test_sum_loop_architectural_state():
    ref = make_ref(SUM_LOOP)
    ref.run()
    assert ref.halted
    assert ref.outputs == [sum(range(1, 51))]
    assert ref.regs[1] == sum(range(1, 51))
    assert ref.mem.read_word(0x400) == sum(range(1, 51))
    # 49 backward taken + 1 final fall-through conditional branch; the
    # CNT_BRANCH CSR itself stays 0 because STATUS.CNT_EN is off.
    assert ref.cnt_branch == 0
    assert ref.branches_taken == 49
    assert ref.branches_not_taken == 1


def test_flags_carry_and_overflow():
    src = PROLOGUE + """
main:
    lui  r1, 0xFFFF
    ori  r1, r1, 0x1FFF      ; r1 = 0xFFFF1FFF
    add  r3, r1, r1          ; carry out, result negative
    csrr r4, 3
    out  r4, 0
    lui  r5, 0x7FFF
    add  r6, r5, r5          ; signed overflow: positive + positive < 0
    csrr r7, 3
    out  r7, 1
    halt
"""
    ref = make_ref(src)
    ref.run()
    assert ref.outputs == pipeline_outputs(src)
    assert len(ref.outputs) == 2
    assert ref.outputs[0] & 0b0010  # carry set
    assert ref.outputs[1] & 0b0001  # overflow set


def test_illegal_instruction_traps():
    src = PROLOGUE + """
main:
    .word 0x34000000         ; opcode 13: unallocated
    halt
"""
    ref = make_ref(src)
    ref.run()
    assert ref.halted
    [(code, count)] = ref.traps.items()
    assert count == 1 and cause_name(code) == "ILLEGAL"
    assert ref.outputs == pipeline_outputs(src)


def test_breakpoint_trap_and_epc():
    src = PROLOGUE + """
main:
    addi r2, r0, 0x8C        ; address of the target instruction
    csrw r2, 8               ; DBG_BKPT0
    addi r3, r0, 1
    csrw r3, 11              ; DBG_CTRL: enable bkpt0
.org 0x8C
    addi r4, r0, 7           ; trapped before executing
    halt
"""
    ref = make_ref(src)
    ref.run()
    assert ref.halted
    assert [cause_name(c) for c in ref.traps] == ["BKPT"]
    assert ref.epc == 0x8C
    assert ref.regs[4] == 0  # faulting instruction never retired
    assert ref.outputs == pipeline_outputs(src)


def test_misaligned_load_trap():
    src = PROLOGUE + """
main:
    addi r1, r0, 0x401
    ld   r2, 0(r1)
    halt
"""
    ref = make_ref(src)
    ref.run()
    assert [cause_name(c) for c in ref.traps] == ["MISALIGNED"]
    assert ref.outputs == pipeline_outputs(src)


def test_perf_counters_when_enabled():
    src = PROLOGUE + """
main:
    addi r1, r0, 0x80        ; STATUS.CNT_EN
    csrw r1, 1
    addi r2, r0, 3
loop:
    st   r2, 0x400(r0)
    addi r2, r2, -1
    bne  r2, r0, loop
    csrr r5, 6               ; CNT_BRANCH
    csrr r6, 7               ; CNT_MEM
    out  r5, 0
    out  r6, 1
    halt
"""
    ref = make_ref(src)
    ref.run()
    assert ref.outputs == [3, 3]  # 3 conditional branches, 3 stores
    assert ref.outputs == pipeline_outputs(src)


def test_in_stream_and_retire_trace():
    src = PROLOGUE + """
main:
    in   r1, 0
    in   r2, 0
    add  r3, r1, r2
    out  r3, 0
    halt
"""
    ref = make_ref(src, stimulus=[10, 32])
    ref.run()
    assert ref.outputs == [42]
    # Retire records carry (pc, value, rd, wen); the add writes r3=42.
    adds = [r for r in ref.retires if r[2] == 3 and r[3] == 1]
    assert adds and adds[0][1] == 42


def test_cosim_agrees_on_generated_program():
    # End-to-end through the public cosim API with a generated program.
    result = cosim(generate_program("refmodel-smoke"))
    assert result.ok, result.mismatches


def test_executed_opcode_accounting():
    ref = make_ref(SUM_LOOP)
    ref.run()
    assert ref.executed[int(Op.ADD)] == 50
    assert ref.executed[int(Op.BNE)] == 50
    assert ref.executed[int(Op.HALT)] == 1
