"""Report renderer tests: every paper artifact renders and carries the
expected rows."""

import pytest

from repro.analysis import evaluate_campaign, topk_sweep
from repro.analysis.reports import (
    render_fig4_5,
    render_fig11,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    render_topk,
)
from repro.faults.models import ErrorType
from repro.reaction import build_context


@pytest.fixture(scope="module")
def evaluation(medium_campaign):
    return evaluate_campaign(medium_campaign, seed=0)


def test_table1_rows(medium_campaign):
    text = render_table1(medium_campaign)
    assert "Soft Error Manifestation Rate" in text
    assert "Hard Error Manifestation Time" in text
    assert "Total injected" in text


def test_table2_rows(medium_campaign):
    ctx = build_context(medium_campaign)
    text = render_table2(ctx.restart_cycles)
    assert "Prediction Table Access Time" in text
    assert "2 (on-chip) / 100 (off-chip)" in text
    assert "STL Latency Range (7 units)" in text
    assert "Restart Latency Range" in text


@pytest.mark.parametrize("etype,figure", [(ErrorType.HARD, "Fig 4"),
                                          (ErrorType.SOFT, "Fig 5")])
def test_fig4_5(medium_campaign, etype, figure):
    text = render_fig4_5(medium_campaign.records, etype)
    assert figure in text
    assert "Average cross-unit BC" in text
    assert text.count("BC(") >= 3


def test_fig11(evaluation):
    text = render_fig11(evaluation)
    for model in ("base-random", "base-ascending", "base-manifest",
                  "pred-location-only", "pred-comb"):
        assert model in text
    assert "speedups" in text


def test_fig14_uses_fine_label(medium_campaign):
    ev = evaluate_campaign(medium_campaign, fine=True, seed=0)
    text = render_fig11(ev, fine=True)
    assert "Fig 14" in text
    assert "13 CPU units" in text


def test_table3(evaluation):
    text = render_table3(evaluation)
    assert "Soft" in text and "Hard" in text and "Overall" in text
    assert "SBIST invocations avoided" in text


def test_topk_report(medium_campaign):
    sweep = topk_sweep(medium_campaign, ks=[1, 7], seed=0)
    text = render_topk(sweep)
    assert "Figs 12/13" in text
    assert "loc.accuracy" in text
    lines = [line for line in text.splitlines() if line.strip().startswith(("1 ", "7 "))]
    assert len(lines) == 2


def test_table4_report():
    text = render_table4(n_entries=1200, ptar_bits=11)
    assert "Table IV" in text
    assert "R5-class gate budget" in text
    assert "simulated SR5 core" in text
    assert text.count("area") >= 4
