"""Campaign-scale safety invariants.

The paper's safety argument (Section IV-C.3): prediction may only
*speed up* reaching the safe state — a misprediction must never leave
a hard fault undiagnosed, and must never cost more than the statically
provisioned worst case.  These tests check that for every error of a
real campaign, under every strategy.
"""

import numpy as np
import pytest

from repro.core import train_predictor
from repro.faults import ErrorType
from repro.reaction import (
    PredCombined,
    PredLocationOnly,
    ReactionContext,
    baseline_strategies,
    build_context,
)


@pytest.fixture(scope="module")
def ctx(quick_campaign) -> ReactionContext:
    return build_context(quick_campaign, seed=0)


@pytest.fixture(scope="module")
def strategies(quick_campaign):
    predictor = train_predictor(quick_campaign.records)
    return baseline_strategies() + [PredLocationOnly(predictor),
                                    PredCombined(predictor)]


def worst_case_budget(record, ctx: ReactionContext) -> int:
    """The statically provisioned reaction budget: a full SBIST sweep,
    a restart, one re-detection, and two table reads."""
    return (2 * ctx.stl.total_latency() + 2 * ctx.restart(record)
            + record.latency + 2 * 100)


class TestEveryErrorEveryStrategy:
    def test_hard_faults_always_diagnosed(self, quick_campaign, ctx, strategies):
        """With 100% STL coverage, no strategy may miss a stuck-at."""
        for strategy in strategies:
            for record in quick_campaign.records:
                reaction = strategy.react(record, ctx)
                if record.error_type is ErrorType.HARD:
                    assert reaction.diagnosed_hard, (strategy.name, record.flop)
                else:
                    assert not reaction.diagnosed_hard, (strategy.name, record.flop)

    def test_reaction_time_positive_and_bounded(self, quick_campaign, ctx, strategies):
        """Every reaction fits the provisioned worst-case budget —
        the hard-deadline guarantee prediction must never break."""
        for strategy in strategies:
            for record in quick_campaign.records:
                reaction = strategy.react(record, ctx)
                assert reaction.lert > 0
                assert reaction.lert <= worst_case_budget(record, ctx), \
                    (strategy.name, record.flop, record.kind)

    def test_soft_errors_always_end_in_restart(self, quick_campaign, ctx, strategies):
        """A transient must never be escalated to a (terminal) failure."""
        soft = [r for r in quick_campaign.records
                if r.error_type is ErrorType.SOFT]
        for strategy in strategies:
            for record in soft:
                reaction = strategy.react(record, ctx)
                assert not reaction.diagnosed_hard

    def test_tested_units_bounded_by_unit_count(self, quick_campaign, ctx, strategies):
        n_units = len(ctx.stl.units)
        for strategy in strategies:
            for record in quick_campaign.records:
                reaction = strategy.react(record, ctx)
                assert 0 <= reaction.tested_units <= n_units


class TestPredictionOnlyHelps:
    def test_location_prediction_no_worse_on_hard_errors(self, quick_campaign, ctx):
        """Averaged over the dataset, the predicted order cannot lose
        to the *same* flow with a fixed order (same soft cost, better
        hard ordering from the training distribution)."""
        predictor = train_predictor(quick_campaign.records)
        pred = PredLocationOnly(predictor)
        hard = [r for r in quick_campaign.records
                if r.error_type is ErrorType.HARD]
        rng_total = {"pred": 0, "base": 0}
        for record in hard:
            rng_total["pred"] += pred.react(record, ctx).lert
        for record in hard:
            rng_total["base"] += baseline_strategies()[1].react(record, ctx).lert
        assert rng_total["pred"] <= rng_total["base"] * 1.05

    def test_mispredicted_soft_recovers_within_budget(self, quick_campaign, ctx):
        """Hard errors whose DSR looks soft go restart -> recur ->
        diagnose; the total must stay within the worst-case budget."""
        predictor = train_predictor(quick_campaign.records)
        comb = PredCombined(predictor)
        for record in quick_campaign.records:
            if record.error_type is not ErrorType.HARD:
                continue
            prediction = predictor.predict_record(record)
            if prediction.error_type is ErrorType.HARD:
                continue
            reaction = comb.react(record, ctx)
            assert reaction.diagnosed_hard
            assert reaction.lert <= worst_case_budget(record, ctx)


class TestDeterminism:
    def test_non_random_strategies_are_deterministic(self, quick_campaign):
        from repro.reaction import BaseAscending
        ctx_a = build_context(quick_campaign, seed=1)
        ctx_b = build_context(quick_campaign, seed=2)
        strategy = BaseAscending()
        for record in quick_campaign.records[:50]:
            assert strategy.react(record, ctx_a) == strategy.react(record, ctx_b)

    def test_base_random_depends_only_on_rng(self, quick_campaign):
        from repro.reaction import BaseRandom
        record = quick_campaign.records[0]
        a = BaseRandom().react(record, build_context(quick_campaign, seed=9))
        b = BaseRandom().react(record, build_context(quick_campaign, seed=9))
        assert a == b
