"""Resumable campaign service: crash recovery, merging, HTTP API.

The contract under test is the acceptance criterion of the service
layer: *killing the campaign runner at any shard boundary or mid-lease
and resuming yields a ``CampaignResult.digest()`` bit-identical to an
uninterrupted run*, across worker counts and engines — plus the lease
state machine, the commutative/associative incremental merge, and the
HTTP endpoints (concurrent lookups, 503-while-training, malformed
signatures, offline-vs-served Top-K parity).
"""

from __future__ import annotations

import dataclasses
import json
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.predictor import train_predictor
from repro.core.table import table_from_payload, table_to_payload
from repro.faults import CampaignConfig
from repro.faults.parallel import execute_campaign, run_shard
from repro.faults.service import (
    CampaignLedger,
    CampaignService,
    IncrementalResultStore,
    LedgerError,
    ServiceClient,
    config_from_wire,
    config_to_wire,
    outcome_from_wire,
    outcome_to_wire,
    record_from_wire,
    record_to_wire,
    run_resumable_campaign,
    run_worker,
    shard_from_wire,
    shard_to_wire,
    start_service,
)
from repro.faults.service import runner as runner_module
from repro.faults.service.client import ServiceError
from repro.faults.service.runner import ledger_digest, result_from_ledger

#: Small enough that a full crash-recovery sweep stays in seconds,
#: large enough to produce errors in every shard.
CRASH_CONFIG = CampaignConfig(
    benchmarks=("ttsprk",),
    soft_per_flop=1,
    hard_per_flop=1,
    flop_fraction=0.02,
    max_observe=300,
)

#: Fixed shard granularity so the sweep covers a known shard count.
CRASH_CHUNK = 12


class Killed(Exception):
    """The simulated crash signal."""


@pytest.fixture(scope="module")
def reference():
    """The uninterrupted monolithic result the ledger path must match."""
    return execute_campaign(CRASH_CONFIG, workers=1)


@pytest.fixture(scope="module")
def n_shards():
    from repro.faults.campaign import sample_flops
    from repro.faults.parallel import sampling_rng

    flops = sample_flops(CRASH_CONFIG, sampling_rng(CRASH_CONFIG.seed))
    return -(-len(flops) // CRASH_CHUNK)


# -- crash recovery ----------------------------------------------------------

@pytest.mark.parametrize("workers,batch", [(1, None), (2, None),
                                           (1, 8), (2, 8)],
                         ids=["w1-scalar", "w2-scalar", "w1-batch", "w2-batch"])
def test_kill_at_every_shard_boundary(tmp_path, reference, n_shards,
                                      workers, batch):
    """Kill after k commits for every k; resume must match bit for bit."""
    assert n_shards >= 3, "sweep needs several shards to mean anything"
    for k in range(1, n_shards):
        ledger_dir = tmp_path / f"k{k}"

        def kill_after(shard_id, n_committed, k=k):
            if n_committed >= k:
                raise Killed(f"killed after {n_committed} commits")

        with pytest.raises(Killed):
            run_resumable_campaign(CRASH_CONFIG, ledger_dir=str(ledger_dir),
                                   workers=workers, chunk_flops=CRASH_CHUNK,
                                   batch=batch, on_commit=kill_after)
        resumed = run_resumable_campaign(
            CRASH_CONFIG, ledger_dir=str(ledger_dir), workers=workers,
            chunk_flops=CRASH_CHUNK, batch=batch)
        assert resumed.meta["resumed_shards"] >= k
        assert resumed.digest() == reference.digest()
        assert resumed.injected == reference.injected
        assert resumed.golden_cycles == reference.golden_cycles


@pytest.mark.parametrize("batch", [None, 8], ids=["scalar", "batch"])
def test_kill_mid_lease(tmp_path, reference, n_shards, monkeypatch, batch):
    """Die *inside* a leased shard (no commit); resume re-runs it exactly."""
    for die_at in (0, n_shards // 2):
        ledger_dir = tmp_path / f"mid{die_at}"
        real_run_shard = run_shard
        state = {"executed": 0}

        def exploding_run_shard(config, shard, batch=None, kernel=None,
                                threads=None):
            if state["executed"] == die_at:
                raise Killed(f"killed mid-lease in shard {shard.flop_base}")
            state["executed"] += 1
            return real_run_shard(config, shard, batch, kernel, threads)

        monkeypatch.setattr(runner_module, "run_shard", exploding_run_shard)
        with pytest.raises(Killed):
            run_resumable_campaign(CRASH_CONFIG, ledger_dir=str(ledger_dir),
                                   workers=1, chunk_flops=CRASH_CHUNK,
                                   batch=batch)
        monkeypatch.setattr(runner_module, "run_shard", real_run_shard)
        resumed = run_resumable_campaign(
            CRASH_CONFIG, ledger_dir=str(ledger_dir), workers=1,
            chunk_flops=CRASH_CHUNK, batch=batch)
        assert resumed.meta["resumed_shards"] == die_at
        assert resumed.digest() == reference.digest()


def test_repeated_kills_still_converge(tmp_path, reference):
    """Kill after every single commit, resuming each time."""
    ledger_dir = str(tmp_path / "ledger")

    def kill_every_commit(shard_id, n_committed):
        raise Killed

    result = None
    for _attempt in range(64):  # bounded: one shard of progress per attempt
        try:
            result = run_resumable_campaign(
                CRASH_CONFIG, ledger_dir=ledger_dir, workers=1,
                chunk_flops=CRASH_CHUNK, on_commit=kill_every_commit)
            break
        except Killed:
            continue
    else:
        pytest.fail("campaign never completed")
    # The final (uninterrupted-tail) attempt commits the last shard and
    # returns; every earlier attempt contributed exactly one shard.
    assert result is None or result.digest() == reference.digest()
    final = run_resumable_campaign(CRASH_CONFIG, ledger_dir=ledger_dir,
                                   workers=1, chunk_flops=CRASH_CHUNK)
    assert final.digest() == reference.digest()


def test_thread_executor_ledger_matches_reference(tmp_path, reference):
    """The in-process shard executor runs the same lease/commit loop;
    digest and pruning stats stay bit-identical to the process pool."""
    threaded = run_resumable_campaign(
        CRASH_CONFIG, ledger_dir=str(tmp_path), workers=2,
        chunk_flops=CRASH_CHUNK, batch=8, executor="thread")
    assert threaded.digest() == reference.digest()
    assert threaded.injected == reference.injected
    assert threaded.meta["executor"] == "thread"


def test_uninterrupted_matches_monolithic_and_pruning(tmp_path, reference):
    """Same chunking => identical records AND identical PruneStats."""
    mono = execute_campaign(CRASH_CONFIG, workers=1, chunk_flops=CRASH_CHUNK)
    ledgered = run_resumable_campaign(CRASH_CONFIG,
                                      ledger_dir=str(tmp_path),
                                      workers=1, chunk_flops=CRASH_CHUNK)
    assert ledgered.digest() == reference.digest()
    assert ledgered.records == mono.records
    assert ledgered.meta["pruning"] == mono.meta["pruning"]
    assert ledgered.sampled_flops == mono.sampled_flops


def test_commit_durability_is_atomic(tmp_path):
    """A torn (partially written) shard file can never be observed.

    The commit protocol writes a temp file and renames; this asserts
    the directory never contains a shard file that fails to parse,
    even with commits landing between scans, and that stray temp files
    from a killed writer are swept on reopen.
    """
    ledger = CampaignLedger(tmp_path, CRASH_CONFIG, chunk_flops=CRASH_CHUNK)
    grant = ledger.lease("w")
    outcome = run_shard(CRASH_CONFIG, grant.shard)
    ledger.commit(grant.shard_id, outcome)
    for shard_file in ledger.path.glob("shard_*.json"):
        json.loads(shard_file.read_text())  # parses or the test fails
    # Simulate a writer killed mid-write: a stray temp file.
    stray = ledger.path / ".shard_00099.json.tmp-12345"
    stray.write_text("{ torn")
    reopened = CampaignLedger(tmp_path, CRASH_CONFIG)
    assert not stray.exists()
    assert reopened.committed_ids == [grant.shard_id]
    reloaded = reopened.load_outcome(grant.shard_id)
    assert reloaded[0] == outcome[0]
    assert reloaded[1] == outcome[1]


def test_ledger_rejects_foreign_manifest(tmp_path):
    ledger = CampaignLedger(tmp_path, CRASH_CONFIG, chunk_flops=CRASH_CHUNK)
    manifest = json.loads((ledger.path / "manifest.json").read_text())
    manifest["cache_key"] = "0" * 16
    (ledger.path / "manifest.json").write_text(json.dumps(manifest))
    with pytest.raises(LedgerError, match="belongs to campaign"):
        CampaignLedger(tmp_path, CRASH_CONFIG)
    (ledger.path / "manifest.json").write_text("not json at all")
    with pytest.raises(LedgerError, match="corrupt ledger manifest"):
        CampaignLedger(tmp_path, CRASH_CONFIG)


def test_incomplete_ledger_refuses_result(tmp_path):
    ledger = CampaignLedger(tmp_path, CRASH_CONFIG, chunk_flops=CRASH_CHUNK)
    with pytest.raises(RuntimeError, match="incomplete"):
        result_from_ledger(ledger)
    with pytest.raises(RuntimeError, match="incomplete"):
        ledger_digest(ledger)


# -- lease state machine -----------------------------------------------------

class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now


def test_lease_expiry_reclamation(tmp_path):
    """A dead worker's shard goes back to pending after its TTL."""
    clock = FakeClock()
    ledger = CampaignLedger(tmp_path, CRASH_CONFIG, chunk_flops=CRASH_CHUNK,
                            clock=clock)
    dead = ledger.lease("dead-worker", ttl=30.0)
    live = ledger.lease("live-worker", ttl=30.0)
    assert dead.shard_id != live.shard_id
    # While the lease is active the shard is not handed out again.
    others = set()
    while (g := ledger.lease("scout", ttl=1.0)) is not None:
        others.add(g.shard_id)
    assert dead.shard_id not in others
    # TTL passes without a commit: the next lease call reclaims it.
    clock.now += 31.0
    reclaimed = ledger.lease("live-worker", ttl=30.0)
    assert reclaimed is not None
    assert reclaimed.shard_id == dead.shard_id
    # The reclaiming worker commits; the dead worker's late commit is a
    # dropped duplicate (identical bytes anyway), never a double count.
    outcome = run_shard(CRASH_CONFIG, reclaimed.shard)
    assert ledger.commit(reclaimed.shard_id, outcome) is True
    assert ledger.commit(dead.shard_id, outcome) is False
    assert ledger.progress()["committed"] == 1


def test_lease_progress_counts(tmp_path):
    clock = FakeClock()
    ledger = CampaignLedger(tmp_path, CRASH_CONFIG, chunk_flops=CRASH_CHUNK,
                            clock=clock)
    total = ledger.n_shards
    ledger.lease("w1", ttl=10.0)
    state = ledger.progress()
    assert state == {"n_shards": total, "committed": 0, "leased": 1,
                     "pending": total - 1, "complete": False}
    clock.now += 11.0
    assert ledger.progress()["leased"] == 0
    assert ledger.progress()["pending"] == total


# -- incremental merge: commutative / associative ----------------------------

@pytest.fixture(scope="module")
def committed_outcomes(tmp_path_factory, reference):
    """All shard outcomes of the crash campaign, via a completed ledger."""
    root = tmp_path_factory.mktemp("merge_ledger")
    run_resumable_campaign(CRASH_CONFIG, ledger_dir=str(root), workers=1,
                           chunk_flops=CRASH_CHUNK)
    ledger = CampaignLedger(root, CRASH_CONFIG)
    return [(sid, ledger.shards[sid].benchmark, outcome)
            for sid, outcome in ledger.iter_committed()]


@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_merge_order_invariance(committed_outcomes, reference, data):
    """Any commit permutation yields the identical result and digest."""
    order = data.draw(st.permutations(range(len(committed_outcomes))))
    store = IncrementalResultStore(CRASH_CONFIG)
    for i in order:
        shard_id, benchmark, outcome = committed_outcomes[i]
        assert store.add(shard_id, benchmark, outcome) is True
    result = store.result()
    assert result.digest() == reference.digest()
    assert result.injected == reference.injected
    assert result.meta["pruning"] == _summed_pruning(committed_outcomes)
    # Duplicate replay changes nothing.
    sid0, bench0, out0 = committed_outcomes[0]
    assert store.add(sid0, bench0, out0) is False
    assert store.result().digest() == reference.digest()


def _summed_pruning(outcomes):
    total: dict[str, int] = {}
    for _sid, _bench, (_r, _i, _n, pruning) in outcomes:
        for key, count in pruning.items():
            total[key] = total.get(key, 0) + count
    return total


def test_merge_associativity_via_partial_stores(committed_outcomes, reference):
    """Merging pre-grouped halves equals merging everything directly."""
    groups = ([], [])
    for index, item in enumerate(committed_outcomes):
        groups[index % 2].append(item)
    combined = IncrementalResultStore(CRASH_CONFIG)
    for group in groups:  # group order reversed relative to commit order
        for sid, bench, outcome in reversed(group):
            combined.add(sid, bench, outcome)
    assert combined.result().digest() == reference.digest()


# -- wire format round trips -------------------------------------------------

def test_record_wire_roundtrip(reference):
    for record in reference.records:
        assert record_from_wire(record_to_wire(record)) == record
    # JSON round trip too (the wire rows must survive serialisation).
    rows = json.loads(json.dumps([record_to_wire(r) for r in reference.records]))
    assert [record_from_wire(row) for row in rows] == reference.records


def test_outcome_wire_roundtrip(tmp_path):
    ledger = CampaignLedger(tmp_path, CRASH_CONFIG, chunk_flops=CRASH_CHUNK)
    grant = ledger.lease("w")
    outcome = run_shard(CRASH_CONFIG, grant.shard)
    payload = json.loads(json.dumps(outcome_to_wire(outcome)))
    records, injected, n_cycles, pruning = outcome_from_wire(payload)
    assert records == outcome[0]
    assert injected == outcome[1]
    assert n_cycles == outcome[2]
    assert pruning == outcome[3]
    with pytest.raises(ValueError, match="unsupported outcome schema"):
        outcome_from_wire({**payload, "schema": 99})


def test_config_and_shard_wire_roundtrip(tmp_path):
    for config in (CRASH_CONFIG, CampaignConfig.quick(),
                   dataclasses.replace(CampaignConfig.default(), prune=False)):
        clone = config_from_wire(json.loads(json.dumps(config_to_wire(config))))
        assert clone == config
        assert clone.cache_key() == config.cache_key()
    with pytest.raises(ValueError, match="unknown campaign config fields"):
        config_from_wire({"benchmarks": ["ttsprk"], "warp_factor": 9})
    ledger = CampaignLedger(tmp_path, CRASH_CONFIG, chunk_flops=CRASH_CHUNK)
    for shard in ledger.shards:
        assert shard_from_wire(json.loads(
            json.dumps(shard_to_wire(shard)))) == shard


# -- HTTP API ----------------------------------------------------------------

@pytest.fixture(scope="module")
def trained_service(tmp_path_factory, reference):
    """A served campaign, complete and ready to predict (Top-K=3)."""
    root = tmp_path_factory.mktemp("served_ledger")
    run_resumable_campaign(CRASH_CONFIG, ledger_dir=str(root), workers=1,
                           chunk_flops=CRASH_CHUNK)
    service = CampaignService(CampaignLedger(root, CRASH_CONFIG), top_k=3)
    handle = start_service(service)
    yield service, handle
    handle.stop()


def test_http_full_campaign_through_lease_api(tmp_path, reference):
    """A remote worker drives the whole campaign over HTTP."""
    ledger = CampaignLedger(tmp_path, CRASH_CONFIG, chunk_flops=CRASH_CHUNK)
    handle = start_service(CampaignService(ledger))
    try:
        client = ServiceClient(handle.base_url)
        assert client.status()["training"] is True
        assert client.config() == CRASH_CONFIG
        committed = run_worker(handle.base_url, "remote-1")
        assert committed == ledger.n_shards
        status = client.status()
        assert status["progress"]["complete"] is True
        assert status["training"] is False
        assert status["digest"] == reference.digest()
        assert status["errors"] == reference.n_errors
    finally:
        handle.stop()


def test_http_503_while_training(tmp_path):
    ledger = CampaignLedger(tmp_path, CRASH_CONFIG, chunk_flops=CRASH_CHUNK)
    handle = start_service(CampaignService(ledger))
    try:
        client = ServiceClient(handle.base_url)
        for call in (lambda: client.predict({1, 2}), client.table):
            with pytest.raises(ServiceError) as excinfo:
                call()
            assert excinfo.value.status == 503
            assert excinfo.value.retry_after is not None
    finally:
        handle.stop()


def test_http_error_paths(trained_service):
    _service, handle = trained_service
    client = ServiceClient(handle.base_url)
    cases = [
        ("GET", "/predict", 400),                 # missing dsr
        ("GET", "/predict?dsr=3,foo", 400),       # malformed signature
        ("GET", "/predict?dsr=3;4", 400),         # wrong separator
        ("GET", "/nonsense", 404),
        ("POST", "/predict", 405),                # wrong method
        ("GET", "/lease", 405),
    ]
    for method, path, expected in cases:
        with pytest.raises(ServiceError) as excinfo:
            client.request(method, path, {} if method == "POST" else None)
        assert excinfo.value.status == expected, (method, path)
    with pytest.raises(ServiceError) as excinfo:
        client.request("POST", "/commit", {"shard_id": "x", "outcome": {}})
    assert excinfo.value.status == 400
    with pytest.raises(ServiceError) as excinfo:
        client.request("POST", "/lease", {"ttl": -5})
    assert excinfo.value.status == 400


def test_http_concurrent_lookups_consistent(trained_service, reference):
    """>= 32 in-flight requests all answer exactly like the offline table."""
    _service, handle = trained_service
    offline = train_predictor(reference.records, top_k=3)
    signatures = sorted({r.diverged for r in reference.records},
                        key=lambda s: (len(s), sorted(s)))[:8]
    signatures.append(frozenset({0, 61}))  # never-observed -> default entry
    n_threads = 32
    answers: list[list] = [None] * n_threads
    errors: list[Exception] = []
    barrier = threading.Barrier(n_threads)

    def worker(index: int):
        try:
            client = ServiceClient(handle.base_url)
            barrier.wait(timeout=30)
            answers[index] = [client.predict(sig) for sig in signatures]
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert not errors
    assert all(answer is not None for answer in answers)
    expected = []
    for sig in signatures:
        prediction = offline.predict(sig)
        expected.append((list(prediction.units), prediction.error_type.value,
                         prediction.from_default))
    for answer in answers:
        got = [(a["units"], a["error_type"], a["from_default"])
               for a in answer]
        assert got == expected


def test_http_topk_matches_offline_table(trained_service, reference):
    """Offline-trained and HTTP-served tables give identical Top-K orders."""
    _service, handle = trained_service
    client = ServiceClient(handle.base_url)
    offline = train_predictor(reference.records, top_k=3)
    # Via /predict:
    for sig in {r.diverged for r in reference.records}:
        served = client.predict(sig)
        prediction = offline.predict(sig)
        assert tuple(served["units"]) == prediction.units
        assert served["error_type"] == prediction.error_type.value
    # Via /table payload round trip:
    rebuilt, fine = table_from_payload(client.table())
    assert fine is False
    for sig in {r.diverged for r in reference.records} | {frozenset({7, 9})}:
        assert rebuilt.lookup(sig) == offline.table.lookup(sig)


def test_table_payload_roundtrip(reference):
    predictor = train_predictor(reference.records, fine=True, top_k=5)
    payload = json.loads(json.dumps(table_to_payload(predictor.table, True)))
    rebuilt, fine = table_from_payload(payload)
    assert fine is True
    assert rebuilt.n_units == predictor.table.n_units
    assert len(rebuilt) == len(predictor.table)
    for sig in {r.diverged for r in reference.records}:
        assert rebuilt.lookup(sig) == predictor.table.lookup(sig)
    with pytest.raises(ValueError, match="unsupported table payload schema"):
        table_from_payload({**payload, "schema": 42})


def test_server_restart_preserves_state(tmp_path, reference):
    """Kill the server (SIGKILL analogue: drop it), restart, resume."""
    ledger = CampaignLedger(tmp_path, CRASH_CONFIG, chunk_flops=CRASH_CHUNK)
    handle = start_service(CampaignService(ledger))
    client = ServiceClient(handle.base_url)
    run_worker(handle.base_url, "w1", max_shards=2)
    assert client.status()["progress"]["committed"] == 2
    handle.stop()  # server gone; ledger survives on disk
    reopened = CampaignLedger(tmp_path, CRASH_CONFIG)
    assert reopened.n_committed == 2
    handle2 = start_service(CampaignService(reopened))
    try:
        run_worker(handle2.base_url, "w2")
        status = ServiceClient(handle2.base_url).status()
        assert status["progress"]["complete"] is True
        assert status["digest"] == reference.digest()
    finally:
        handle2.stop()
