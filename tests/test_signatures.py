"""Signature statistics tests."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import SignatureStats
from repro.core.bhattacharyya import (
    average_bc,
    average_type_bc,
    bc_extremes,
    bhattacharyya,
    cross_unit_bc,
    type_bc_per_unit,
)
from repro.cpu import FlopRef
from repro.faults import ErrorRecord, ErrorType, FaultKind


def rec(reg: str, kind: FaultKind, diverged, bench="ttsprk",
        inject=10, detect=20) -> ErrorRecord:
    return ErrorRecord(benchmark=bench, flop=FlopRef(reg, 0), kind=kind,
                       inject_cycle=inject, detect_cycle=detect,
                       diverged=frozenset(diverged))


@pytest.fixture
def toy_records():
    return [
        rec("pc", FaultKind.SOFT, {0, 1}),        # PFU
        rec("pc", FaultKind.STUCK1, {0, 1, 2}),   # PFU
        rec("lsu_addr", FaultKind.SOFT, {6}),     # LSU
        rec("lsu_addr", FaultKind.STUCK0, {6}),   # LSU
        rec("lsu_addr", FaultKind.STUCK0, {6, 7}),
        rec("rf3", FaultKind.SOFT, {50}),         # DPU.RF
    ]


class TestAccumulation:
    def test_counts_by_set_and_unit(self, toy_records):
        stats = SignatureStats.from_records(toy_records)
        assert stats.set_unit_counts[frozenset({6})]["LSU"] == 2
        assert stats.unit_totals["PFU"] == 2
        assert stats.n_sets() == 5

    def test_fine_taxonomy_units(self, toy_records):
        stats = SignatureStats.from_records(toy_records, fine=True)
        assert stats.unit_totals["DPU.RF"] == 1

    def test_set_probabilities_normalised(self, toy_records):
        stats = SignatureStats.from_records(toy_records)
        probs = stats.set_probabilities(frozenset({6}))
        assert math.isclose(sum(probs.values()), 1.0)
        assert probs["LSU"] == 1.0

    def test_type_probabilities(self, toy_records):
        stats = SignatureStats.from_records(toy_records)
        probs = stats.type_probabilities(frozenset({6}))
        assert probs[ErrorType.SOFT] == 0.5
        assert probs[ErrorType.HARD] == 0.5

    def test_unknown_set_empty(self, toy_records):
        stats = SignatureStats.from_records(toy_records)
        assert stats.set_probabilities(frozenset({61})) == {}
        assert stats.type_probabilities(frozenset({61})) == {}

    def test_unit_distribution_sums_to_one(self, toy_records):
        stats = SignatureStats.from_records(toy_records)
        dist = stats.unit_distribution("LSU")
        assert math.isclose(sum(dist.values()), 1.0)

    def test_unit_distribution_per_type(self, toy_records):
        stats = SignatureStats.from_records(toy_records)
        hard = stats.unit_distribution("LSU", ErrorType.HARD, toy_records)
        assert math.isclose(sum(hard.values()), 1.0)
        assert frozenset({6, 7}) in hard

    def test_per_type_requires_records(self, toy_records):
        stats = SignatureStats.from_records(toy_records)
        with pytest.raises(ValueError):
            stats.unit_distribution("LSU", ErrorType.HARD)

    def test_diverged_sets_canonical_order(self, toy_records):
        stats = SignatureStats.from_records(toy_records)
        sets = stats.diverged_sets
        sizes = [len(s) for s in sets]
        assert sizes == sorted(sizes)


class TestBhattacharyya:
    def test_identical_distributions_give_one(self):
        p = {frozenset({1}): 0.5, frozenset({2}): 0.5}
        assert math.isclose(bhattacharyya(p, p), 1.0)

    def test_disjoint_distributions_give_zero(self):
        p = {frozenset({1}): 1.0}
        q = {frozenset({2}): 1.0}
        assert bhattacharyya(p, q) == 0.0

    def test_symmetry(self):
        p = {frozenset({1}): 0.3, frozenset({2}): 0.7}
        q = {frozenset({1}): 0.6, frozenset({3}): 0.4}
        assert math.isclose(bhattacharyya(p, q), bhattacharyya(q, p))

    def test_empty_distribution_gives_zero(self):
        assert bhattacharyya({}, {frozenset({1}): 1.0}) == 0.0

    @given(st.lists(st.floats(0.01, 1.0), min_size=1, max_size=8),
           st.lists(st.floats(0.01, 1.0), min_size=1, max_size=8))
    def test_bounded_property(self, a, b):
        p = {frozenset({i}): v / sum(a) for i, v in enumerate(a)}
        q = {frozenset({i}): v / sum(b) for i, v in enumerate(b)}
        bc = bhattacharyya(p, q)
        assert -1e-9 <= bc <= 1.0 + 1e-9

    @given(st.lists(st.floats(0.01, 1.0), min_size=2, max_size=8))
    def test_self_similarity_is_max_property(self, a):
        p = {frozenset({i}): v / sum(a) for i, v in enumerate(a)}
        q = {frozenset({i + 100}): v / sum(a) for i, v in enumerate(a)}
        assert bhattacharyya(p, p) >= bhattacharyya(p, q)


class TestUnitBc:
    def test_cross_unit_bc_on_campaign(self, medium_campaign):
        records = medium_campaign.records
        stats = SignatureStats.from_records(records)
        bcs = cross_unit_bc(stats, records, ErrorType.HARD)
        assert bcs
        for value in bcs.values():
            assert 0.0 <= value <= 1.0

    def test_signatures_are_distinguishable(self, medium_campaign):
        """The core claim: cross-unit BC is well below 1 (paper: ~0.4)."""
        records = medium_campaign.records
        stats = SignatureStats.from_records(records)
        for etype in (ErrorType.HARD, ErrorType.SOFT):
            assert average_bc(stats, records, etype) < 0.7

    def test_extremes_ordering(self, medium_campaign):
        records = medium_campaign.records
        stats = SignatureStats.from_records(records)
        lo, mid, hi = bc_extremes(stats, records, ErrorType.HARD)
        bcs = cross_unit_bc(stats, records, ErrorType.HARD)
        assert bcs[lo] <= bcs[mid] <= bcs[hi]

    def test_type_bc_bounded(self, medium_campaign):
        records = medium_campaign.records
        stats = SignatureStats.from_records(records)
        per_unit = type_bc_per_unit(stats, records)
        assert per_unit
        for value in per_unit.values():
            assert 0.0 <= value <= 1.0
        assert 0.0 <= average_type_bc(stats, records) <= 1.0

    def test_extremes_raise_without_data(self):
        stats = SignatureStats()
        with pytest.raises(ValueError):
            bc_extremes(stats, [], ErrorType.HARD)
