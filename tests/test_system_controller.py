"""Safe-state machine and availability model tests."""

import pytest

from repro.core import train_predictor
from repro.faults import ErrorType
from repro.reaction import (
    AvailabilityModel,
    DeadlineViolation,
    SystemController,
    SystemState,
)
from repro.workloads import KERNELS


@pytest.fixture(scope="module")
def predictor(quick_campaign):
    return train_predictor(quick_campaign.records)


def _force_error(controller: SystemController) -> None:
    """Run until mid-task, then plant a guaranteed-visible upset."""
    for _ in range(100):
        controller.processor.step()
    controller.processor.core_b.imc_addr ^= 2
    state = controller.run_until_error_or_done()
    assert state is SystemState.DETECTED


class TestStateMachine:
    def test_fault_free_task_completes(self, predictor):
        controller = SystemController(KERNELS["puwmod"], predictor)
        state = controller.run_until_error_or_done()
        assert state is SystemState.RUNNING
        assert not controller.log

    def test_transient_goes_through_restart(self, predictor):
        controller = SystemController(KERNELS["ttsprk"], predictor)
        _force_error(controller)
        entry = controller.handle_error(true_fault_unit=None)
        assert controller.state in (SystemState.RESTARTING, SystemState.FAILED)
        assert not entry.diagnosed_hard
        assert entry.reaction_cycles > 0
        # After reset the task runs to completion in lockstep.
        final = controller.run_until_error_or_done()
        assert final is SystemState.RUNNING

    def test_hard_fault_reaches_failed_safe_state(self, predictor):
        controller = SystemController(KERNELS["ttsprk"], predictor)
        _force_error(controller)
        entry = controller.handle_error(true_fault_unit="IMC")
        if controller.state is SystemState.RESTARTING:
            # Predicted soft: the stuck-at recurs; second error is
            # always treated as hard (the paper's retry rule).
            for _ in range(100):
                controller.processor.step()
            controller.processor.core_b.imc_addr ^= 2
            controller.run_until_error_or_done()
            entry = controller.handle_error(true_fault_unit="IMC")
        assert controller.state is SystemState.FAILED
        assert entry.diagnosed_hard

    def test_failed_is_terminal(self, predictor):
        controller = SystemController(KERNELS["ttsprk"], predictor)
        _force_error(controller)
        controller.handle_error(true_fault_unit="IMC")
        if controller.state is SystemState.FAILED:
            assert controller.run_until_error_or_done() is SystemState.FAILED

    def test_handle_without_error_rejected(self, predictor):
        controller = SystemController(KERNELS["ttsprk"], predictor)
        with pytest.raises(RuntimeError, match="no latched error"):
            controller.handle_error(None)

    def test_baseline_controller_always_diagnoses(self):
        controller = SystemController(KERNELS["ttsprk"], predictor=None)
        _force_error(controller)
        entry = controller.handle_error(true_fault_unit=None)
        assert entry.predicted_type is ErrorType.HARD  # worst-case flow
        assert not entry.diagnosed_hard

    def test_deadline_enforced(self, predictor):
        controller = SystemController(KERNELS["ttsprk"], predictor=None,
                                      deadline_cycles=10)
        _force_error(controller)
        with pytest.raises(DeadlineViolation):
            controller.handle_error(true_fault_unit=None)

    def test_log_accumulates(self, predictor):
        controller = SystemController(KERNELS["ttsprk"], predictor)
        _force_error(controller)
        controller.handle_error(None)
        assert len(controller.log) == 1
        assert controller.log[0].dsr


class TestAvailabilityModel:
    def test_availability_decreases_with_lert(self):
        model = AvailabilityModel(errors_per_gigacycle=100)
        assert model.availability(100_000) > model.availability(1_000_000)

    def test_unavailability_formula(self):
        model = AvailabilityModel(errors_per_gigacycle=10)
        assert model.unavailability(1_000_000) == pytest.approx(0.01)

    def test_unavailability_clamped(self):
        model = AvailabilityModel(errors_per_gigacycle=1e9)
        assert model.unavailability(10) == 1.0

    def test_improvement_equals_lert_reduction(self):
        """Below saturation, unavailability is linear in LERT, so the
        availability improvement equals the paper's LERT speedup."""
        model = AvailabilityModel()
        assert model.improvement(1_000_000, 400_000) == pytest.approx(0.6)

    def test_improvement_zero_baseline(self):
        assert AvailabilityModel().improvement(0, 0) == 0.0

    def test_nines(self):
        model = AvailabilityModel(errors_per_gigacycle=10)
        assert model.nines(1_000_000) == pytest.approx(2.0)
        assert model.nines(100_000) == pytest.approx(3.0)
