"""Prediction table, address mapper and DSR/PTAR hardware model tests."""

import pytest

from repro.core import (
    OFF_CHIP_ACCESS_CYCLES,
    ON_CHIP_ACCESS_CYCLES,
    AddressMapper,
    DivergenceStatusRegister,
    PredictionTable,
    PredictionTableAddressRegister,
    TableEntry,
    train_predictor,
)
from repro.cpu import NUM_SCS


def keys(*sets):
    return [frozenset(s) for s in sets]


@pytest.fixture
def small_table():
    entries = [
        (frozenset({1}), TableEntry(("PFU", "DPU"), True)),
        (frozenset({2, 3}), TableEntry(("LSU",), False)),
    ]
    return PredictionTable(entries, TableEntry(("PFU",), True), n_units=7)


class TestAddressMapper:
    def test_maps_known_keys_densely(self):
        mapper = AddressMapper(keys({1}, {2}, {3}))
        assert [mapper.map(frozenset({i})) for i in (1, 2, 3)] == [0, 1, 2]

    def test_unknown_key_maps_to_default(self):
        mapper = AddressMapper(keys({1}))
        assert mapper.map(frozenset({9})) == mapper.default_index == 1

    def test_ptar_bits(self):
        assert AddressMapper(keys({1})).ptar_bits == 1
        mapper = AddressMapper([frozenset({i}) for i in range(40)])
        assert mapper.ptar_bits == 6  # 41 addresses fit in 6 bits

    def test_paper_scale_ptar_is_11_bits(self):
        pairs = [frozenset({i, j}) for i in range(62) for j in range(i + 1, 62)]
        mapper = AddressMapper(pairs[:1200])
        # ~1200 sets like the paper -> 11-bit PTAR
        assert len(mapper) == 1200
        assert mapper.ptar_bits == 11


class TestPredictionTable:
    def test_lookup_known(self, small_table):
        assert small_table.lookup(frozenset({2, 3})).units == ("LSU",)

    def test_lookup_unknown_returns_default(self, small_table):
        entry = small_table.lookup(frozenset({60}))
        assert entry.predict_hard
        assert entry.units == ("PFU",)

    def test_len_includes_default(self, small_table):
        assert len(small_table) == 3

    def test_unit_id_bits(self, small_table):
        assert small_table.unit_id_bits == 3  # 7 units
        table13 = PredictionTable([], TableEntry((), True), n_units=13)
        assert table13.unit_id_bits == 4

    def test_entry_bits_worst_case(self, small_table):
        # widest entry has 2 units -> 2*3 + 1 type bit
        assert small_table.entry_bits == 7

    def test_size_bytes(self, small_table):
        assert small_table.size_bytes == pytest.approx(3 * 7 / 8)

    def test_placement_latencies(self, small_table):
        assert small_table.access_cycles == ON_CHIP_ACCESS_CYCLES
        off = small_table.placed(off_chip=True)
        assert off.access_cycles == OFF_CHIP_ACCESS_CYCLES
        back = off.placed(off_chip=False)
        assert back.access_cycles == ON_CHIP_ACCESS_CYCLES
        # placement copies share entries
        assert off.lookup(frozenset({1})) is small_table.lookup(frozenset({1}))

    def test_paper_sizing_7_units_full_order(self, medium_campaign):
        """With all 7 units per entry: 21 location bits + 1 type bit,
        matching the paper's 22-bit entries (Section V-B)."""
        predictor = train_predictor(medium_campaign.records)
        assert predictor.table.entry_bits == 22


class TestDsrHardware:
    def test_capture_sets_sticky_bits(self):
        dsr = DivergenceStatusRegister()
        a = tuple(range(NUM_SCS))
        b = tuple(v + (i in (3, 8)) for i, v in enumerate(a))
        dsr.capture(a, b)
        assert dsr.as_set == frozenset({3, 8})

    def test_bits_accumulate_until_reset(self):
        dsr = DivergenceStatusRegister()
        a = tuple(range(NUM_SCS))
        b3 = tuple(v + (i == 3) for i, v in enumerate(a))
        b9 = tuple(v + (i == 9) for i, v in enumerate(a))
        dsr.capture(a, b3)
        dsr.capture(a, b9)
        assert dsr.as_set == frozenset({3, 9})
        dsr.reset()
        assert dsr.as_set == frozenset()

    def test_ptar_loads_mapped_address(self):
        mapper = AddressMapper(keys({3}, {5}))
        ptar = PredictionTableAddressRegister(mapper)
        dsr = DivergenceStatusRegister()
        a = tuple(range(NUM_SCS))
        b = tuple(v + (i == 5) for i, v in enumerate(a))
        dsr.capture(a, b)
        assert ptar.load(dsr) == 1
        assert ptar.bits == mapper.ptar_bits

    def test_ptar_defaults_before_load(self):
        mapper = AddressMapper(keys({3}))
        ptar = PredictionTableAddressRegister(mapper)
        assert ptar.value == mapper.default_index
