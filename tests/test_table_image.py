"""Prediction-table memory image pack/unpack tests."""

import pytest

from repro.core import train_predictor
from repro.core.table_image import pack_table, unpack_entry, unpack_table
from repro.cpu import FlopRef
from repro.faults import ErrorRecord, FaultKind


def rec(reg, kind, diverged):
    return ErrorRecord(benchmark="ttsprk", flop=FlopRef(reg, 0), kind=kind,
                       inject_cycle=10, detect_cycle=20,
                       diverged=frozenset(diverged))


@pytest.fixture
def predictor():
    return train_predictor([
        rec("pc", FaultKind.STUCK1, {1}),
        rec("lsu_addr", FaultKind.SOFT, {6}),
        rec("rf1", FaultKind.SOFT, {9, 10}),
    ])


class TestPack:
    def test_image_size_matches_entry_accounting(self, predictor):
        image = pack_table(predictor)
        assert image.n_entries == len(predictor.table)
        expected_bits = image.n_entries * image.entry_bits
        assert len(image.data) == (expected_bits + 7) // 8

    def test_full_order_entries_use_22_bits(self, predictor):
        """7 units x 3 bits + 1 type bit: the paper's entry width."""
        image = pack_table(predictor)
        assert image.entry_bits == 22

    def test_entries_roundtrip(self, predictor):
        image = pack_table(predictor)
        table = predictor.table
        for i, entry in enumerate(table.entries):
            assert unpack_entry(image, i) == entry
        assert unpack_entry(image, image.n_entries - 1) == table.default_entry

    def test_topk_image_smaller(self):
        records = [rec("pc", FaultKind.STUCK1, {i}) for i in range(5)]
        full = pack_table(train_predictor(records))
        topk = pack_table(train_predictor(records, top_k=3))
        assert len(topk) < len(full)
        assert topk.entry_bits == 3 * 3 + 1

    def test_out_of_range_entry_rejected(self, predictor):
        image = pack_table(predictor)
        with pytest.raises(IndexError):
            unpack_entry(image, image.n_entries)


class TestUnpackTable:
    def test_full_table_roundtrip(self, predictor):
        image = pack_table(predictor)
        keys = [key for key, _ in zip(
            sorted({rec_key for rec_key in predictor.table.mapper._index},
                   key=predictor.table.mapper.map),
            range(len(predictor.table.entries)))]
        rebuilt = unpack_table(image, keys)
        for key in keys:
            assert rebuilt.lookup(key) == predictor.table.lookup(key)
        unseen = frozenset({60, 61})
        assert rebuilt.lookup(unseen) == predictor.table.lookup(unseen)

    def test_key_count_mismatch_rejected(self, predictor):
        image = pack_table(predictor)
        with pytest.raises(ValueError):
            unpack_table(image, [frozenset({1})] * (image.n_entries + 3))

    def test_fine_taxonomy_uses_4_bit_ids(self, quick_campaign):
        predictor = train_predictor(quick_campaign.records, fine=True)
        image = pack_table(predictor)
        assert image.unit_bits == 4
        assert image.entry_bits == 13 * 4 + 1
        for i in range(min(5, image.n_entries - 1)):
            assert unpack_entry(image, i) == predictor.table.entries[i]

    def test_campaign_scale_roundtrip(self, quick_campaign):
        predictor = train_predictor(quick_campaign.records)
        image = pack_table(predictor)
        for i, entry in enumerate(predictor.table.entries):
            assert unpack_entry(image, i) == entry
