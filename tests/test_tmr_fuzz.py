"""Voted-triple (TMR) fault-fuzz: digests, attribution, voter parity.

The load-bearing assertions: a 3-core session's digest is bit-identical
for any worker count (the slot stream is keyed, not sequential), the
voter blames the planted core on every detection and its resolved
value equals golden (single-fault TMR must attribute and recover
perfectly — that is the point of the third core), the TMR session's
*classifications* match the DMR session's fault for fault (the voter
adds information, it must not change detection), and the majority
kernel on the detection path is the real mutable ``vote_value`` hook.
"""

from __future__ import annotations

import pytest

import repro.lockstep.checker as checker_mod
from repro.verify.faultfuzz import run_faultfuzz, sample_slots

SMALL = dict(programs=12, seed=0, faults_per_program=3)


@pytest.fixture(scope="module")
def tmr_session():
    return run_faultfuzz(**SMALL, cores=3)


@pytest.fixture(scope="module")
def dmr_session():
    return run_faultfuzz(**SMALL)


# ---------------------------------------------------------------------------
# Slot sampling.
# ---------------------------------------------------------------------------

def test_sample_slots_keyed_not_sequential():
    a = sample_slots(7, 3, 6, 3)
    assert a == sample_slots(7, 3, 6, 3)
    assert sample_slots(7, 4, 6, 3) != a or sample_slots(8, 3, 6, 3) != a
    assert all(0 <= s < 3 for s in a)


def test_dmr_keeps_the_fixed_historical_slot():
    assert sample_slots(0, 0, 5, 2) == [1] * 5


def test_session_covers_every_slot(tmr_session):
    slots = {o.faulty_core for o in tmr_session.outcomes}
    assert slots == {0, 1, 2}


# ---------------------------------------------------------------------------
# Digest contract.
# ---------------------------------------------------------------------------

def test_tmr_digest_identical_for_any_worker_count(tmr_session):
    sharded = run_faultfuzz(**SMALL, cores=3, workers=2)
    assert sharded.digest() == tmr_session.digest()
    order = [o.program for o in sharded.outcomes]
    assert order == sorted(order)


def test_tmr_and_dmr_digests_differ(tmr_session, dmr_session):
    # Same faults, different regime: the attribution fields must be
    # covered by the digest.
    assert tmr_session.digest() != dmr_session.digest()


# ---------------------------------------------------------------------------
# Attribution and voter-value correctness.
# ---------------------------------------------------------------------------

def test_voter_blames_the_planted_core(tmr_session):
    detected = [o for o in tmr_session.outcomes
                if o.classification == "detected"]
    assert detected, "session too small to detect anything?"
    for o in detected:
        assert o.erring_cpu is not None
        assert o.attribution_ok is True, (o.erring_cpu, o.faulty_core)
        # Two agreeing golden cores: the majority IS the golden value,
        # so forward recovery from the vote would be exact.
        assert o.vote_golden is True
    accuracy = tmr_session.attribution()
    assert accuracy == {"correct": len(detected), "wrong": 0}


def test_undetected_faults_carry_no_attribution(tmr_session):
    for o in tmr_session.outcomes:
        if o.classification != "detected":
            assert o.erring_cpu is None
            assert o.attribution_ok is None
            assert o.vote_golden is None


def test_tmr_classifications_match_dmr(tmr_session, dmr_session):
    """The voter must not change *what* is detected, only add the
    attribution: with two fault-free slots the faulty-vs-majority
    divergence is exactly the DMR faulty-vs-golden divergence,
    wherever the fault lands in the group."""
    assert len(tmr_session.outcomes) == len(dmr_session.outcomes)
    for t, d in zip(tmr_session.outcomes, dmr_session.outcomes):
        assert (t.program, t.flop, t.kind, t.inject_cycle) \
            == (d.program, d.flop, d.kind, d.inject_cycle)
        assert t.classification == d.classification
        assert t.detect_cycle == d.detect_cycle
        assert t.diverged == d.diverged
        assert t.escape_detail == d.escape_detail


def test_report_renders_attribution_line(tmr_session):
    text = tmr_session.report()
    assert "3-core voted" in text
    assert "erring-CPU attribution:" in text
    assert "digest:" in text


# ---------------------------------------------------------------------------
# The voted path runs the real (mutable) majority kernel.
# ---------------------------------------------------------------------------

def test_tmr_fuzz_goes_through_vote_value_hook(monkeypatch):
    """A min-instead-of-majority kernel must change outcomes — proving
    the session's error-cycle votes flow through the mutable
    ``vote_value`` hook on both the compact and expanded paths."""
    baseline = run_faultfuzz(programs=10, seed=1, faults_per_program=3,
                             cores=3)
    monkeypatch.setattr(checker_mod, "vote_value", lambda values: min(values))
    broken = run_faultfuzz(programs=10, seed=1, faults_per_program=3,
                           cores=3)
    assert broken.digest() != baseline.digest()
    # Whenever the faulty value undercuts golden, min() resolves to it:
    # the vote stops matching golden and/or the attribution flips.
    assert any(o.vote_golden is False for o in broken.outcomes)
    assert all(o.vote_golden is not False for o in baseline.outcomes)
