"""Unit taxonomy and flip-flop registry tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cpu.units import (
    COARSE_UNITS,
    DPU,
    DPU_SUBUNITS,
    FINE_UNITS,
    REG_BY_NAME,
    REG_INDEX,
    REGISTRY,
    TOTAL_FLOPS,
    FlopRef,
    all_flops,
    coarse_unit,
    flops_of_unit,
    unit_flop_counts,
)


class TestTaxonomy:
    def test_seven_coarse_units(self):
        """The paper's Figure 8 organisation."""
        assert len(COARSE_UNITS) == 7

    def test_thirteen_fine_units(self):
        """The paper's Section V-D fine organisation."""
        assert len(FINE_UNITS) == 13

    def test_dpu_splits_into_seven_subunits(self):
        assert len(DPU_SUBUNITS) == 7

    def test_coarse_unit_folds_dpu(self):
        for sub in DPU_SUBUNITS:
            assert coarse_unit(sub) == DPU
        for unit in COARSE_UNITS:
            if unit != DPU:
                assert coarse_unit(unit) == unit

    def test_every_register_has_a_fine_unit(self):
        for spec in REGISTRY:
            assert spec.unit in FINE_UNITS


class TestRegistry:
    def test_registry_names_unique(self):
        names = [spec.name for spec in REGISTRY]
        assert len(names) == len(set(names))

    def test_total_flops_matches_widths(self):
        assert TOTAL_FLOPS == sum(spec.width for spec in REGISTRY)

    def test_index_matches_order(self):
        for i, spec in enumerate(REGISTRY):
            assert REG_INDEX[spec.name] == i
            assert REG_BY_NAME[spec.name] is spec

    def test_dpu_is_largest_coarse_unit(self):
        """The DPU is the most complex unit, as in the Cortex-R5."""
        counts = unit_flop_counts()
        assert max(counts, key=counts.get) == DPU

    def test_fine_counts_sum_to_coarse(self):
        fine = unit_flop_counts(fine=True)
        coarse = unit_flop_counts()
        assert sum(fine[s] for s in DPU_SUBUNITS) == coarse[DPU]

    def test_all_units_nonempty(self):
        for unit, count in unit_flop_counts(fine=True).items():
            assert count > 0, unit


class TestFlopRef:
    def test_valid_ref(self):
        ref = FlopRef("pc", 31)
        assert ref.unit == "PFU"
        assert ref.coarse == "PFU"

    def test_fine_to_coarse(self):
        ref = FlopRef("rf5", 0)
        assert ref.unit == "DPU.RF"
        assert ref.coarse == DPU

    def test_unknown_register_rejected(self):
        with pytest.raises(ValueError, match="unknown register"):
            FlopRef("nonexistent", 0)

    def test_bit_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            FlopRef("halted", 1)

    def test_refs_are_hashable_and_ordered(self):
        refs = {FlopRef("pc", 0), FlopRef("pc", 1), FlopRef("pc", 0)}
        assert len(refs) == 2
        assert FlopRef("pc", 0) < FlopRef("pc", 1)


class TestEnumeration:
    def test_all_flops_count(self):
        assert len(all_flops()) == TOTAL_FLOPS

    def test_all_flops_unique(self):
        flops = all_flops()
        assert len(set(flops)) == len(flops)

    def test_flops_of_unit_partition_coarse(self):
        total = sum(len(flops_of_unit(u)) for u in COARSE_UNITS)
        assert total == TOTAL_FLOPS

    def test_flops_of_unit_partition_fine(self):
        total = sum(len(flops_of_unit(u, fine=True)) for u in FINE_UNITS)
        assert total == TOTAL_FLOPS

    def test_flops_of_unit_counts_match(self):
        counts = unit_flop_counts(fine=True)
        for unit in FINE_UNITS:
            assert len(flops_of_unit(unit, fine=True)) == counts[unit]


@given(st.sampled_from([spec.name for spec in REGISTRY]), st.data())
def test_any_flop_addressable(reg, data):
    """Every (register, bit) pair inside declared widths is addressable."""
    width = REG_BY_NAME[reg].width
    bit = data.draw(st.integers(0, width - 1))
    ref = FlopRef(reg, bit)
    assert ref.coarse in COARSE_UNITS
