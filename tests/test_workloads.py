"""Workload kernel correctness: the CPU must match the bit-exact
Python reference model on every kernel, across seeds."""

import pytest

from repro.workloads import DEFAULT_SEED, KERNELS, build, get_workload, run_kernel, workload_names


class TestRegistry:
    def test_ten_kernels(self):
        assert len(KERNELS) == 10

    def test_names(self):
        assert set(workload_names()) == {
            "ttsprk", "a2time", "rspeed", "canrdr", "tblook",
            "aifirf", "matrix", "puwmod", "iirflt", "idctrn",
        }

    def test_get_workload(self):
        assert get_workload("ttsprk").name == "ttsprk"

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown workload"):
            get_workload("nonesuch")

    def test_descriptions_present(self):
        for workload in KERNELS.values():
            assert workload.description


@pytest.mark.parametrize("name", sorted(KERNELS))
class TestKernelCorrectness:
    def test_matches_reference(self, name):
        workload = KERNELS[name]
        run = run_kernel(workload)
        assert run.halted
        assert not run.exception
        assert run.outputs == workload.reference(workload.stimulus(DEFAULT_SEED))

    def test_matches_reference_other_seed(self, name):
        workload = KERNELS[name]
        run = run_kernel(workload, seed=123456)
        assert run.halted
        assert run.outputs == workload.reference(workload.stimulus(123456))

    def test_run_length_reasonable(self, name):
        run = run_kernel(KERNELS[name])
        assert 500 < run.cycles < 20_000

    def test_stimulus_deterministic(self, name):
        workload = KERNELS[name]
        assert workload.stimulus(7) == workload.stimulus(7)

    def test_stimulus_seed_sensitive(self, name):
        workload = KERNELS[name]
        assert workload.stimulus(7) != workload.stimulus(8)


class TestBuild:
    def test_build_returns_program_and_stream(self):
        program, stream = build(KERNELS["ttsprk"])
        assert len(program.words) > 10
        assert stream.values

    def test_entry_points_at_start(self):
        program, _ = build(KERNELS["matrix"])
        assert program.entry == program.symbols["_start"]
